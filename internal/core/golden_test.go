package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pybuf"
	"repro/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

// goldenConfigs is the fixed sweep pinned by the determinism fixture: every
// collective family, both language modes (plus pickle), eager and rendezvous
// sizes, power-of-two and folded rank counts, and a timing-only world. Any
// engine change that alters a single reported number anywhere in this matrix
// fails TestGoldenSeries.
func goldenConfigs() []Options {
	sizes := func(o Options, minS, maxS int) Options {
		o.MinSize, o.MaxSize = minS, maxS
		o.Iters, o.Warmup = 10, 2
		o.LargeIters, o.LargeWarmup = 4, 1
		return o
	}
	return []Options{
		// Point-to-point, eager through rendezvous, C and Py and pickle.
		sizes(Options{Benchmark: Latency, Mode: ModeC, Ranks: 2, PPN: 1}, 1, 64*1024),
		sizes(Options{Benchmark: Latency, Mode: ModePy, Buffer: pybuf.NumPy, Ranks: 2, PPN: 2}, 1, 64*1024),
		sizes(Options{Benchmark: Latency, Mode: ModePickle, Buffer: pybuf.NumPy, Ranks: 2, PPN: 1}, 64, 16*1024),
		sizes(Options{Benchmark: Bandwidth, Mode: ModeC, Ranks: 2, PPN: 1, Window: 16}, 1024, 128*1024),
		// Collectives: pow2 and folded groups, both modes.
		sizes(Options{Benchmark: Allreduce, Mode: ModeC, Ranks: 16, PPN: 4}, 4, 256*1024),
		sizes(Options{Benchmark: Allreduce, Mode: ModePy, Buffer: pybuf.NumPy, Ranks: 12, PPN: 4}, 4, 64*1024),
		sizes(Options{Benchmark: Allgather, Mode: ModeC, Ranks: 16, PPN: 4}, 1, 32*1024),
		sizes(Options{Benchmark: Alltoall, Mode: ModePy, Buffer: pybuf.NumPy, Ranks: 8, PPN: 4}, 1, 8*1024),
		sizes(Options{Benchmark: Bcast, Mode: ModeC, Ranks: 16, PPN: 8}, 1, 1<<20),
		sizes(Options{Benchmark: ReduceScatter, Mode: ModeC, Ranks: 12, PPN: 4}, 16, 16*1024),
		sizes(Options{Benchmark: Gather, Mode: ModeC, Ranks: 16, PPN: 4}, 1, 8*1024),
		sizes(Options{Benchmark: Scatter, Mode: ModeC, Ranks: 16, PPN: 4}, 1, 8*1024),
		sizes(Options{Benchmark: Barrier, Mode: ModeC, Ranks: 16, PPN: 4}, 1, 1),
		// Timing-only large world (payloads dropped above the carry limit).
		sizes(Options{Benchmark: Allreduce, Mode: ModeC, Ranks: 64, PPN: 8, TimingOnly: true}, 16*1024, 64*1024),
	}
}

// goldenSeries runs every golden config and returns the labelled series.
func goldenSeries(t *testing.T) []stats.Series {
	t.Helper()
	out := make([]stats.Series, 0, len(goldenConfigs()))
	for i, opts := range goldenConfigs() {
		rep, err := Run(opts)
		if err != nil {
			t.Fatalf("golden config %d (%s): %v", i, opts.Benchmark, err)
		}
		s := rep.Series
		s.Name = fmt.Sprintf("%s/%s/%dx%d", opts.Benchmark, opts.Mode, opts.Ranks, opts.PPN)
		if opts.TimingOnly {
			s.Name += "/timing-only"
		}
		out = append(out, s)
	}
	return out
}

// TestGoldenSeries asserts that the full stats.Series of the fixed sweep is
// byte-identical to the committed fixture: the engine's fast-path rewrites
// must never change a reported virtual-time number. Regenerate with
//
//	go test ./internal/core -run TestGoldenSeries -update
func TestGoldenSeries(t *testing.T) {
	got, err := json.MarshalIndent(goldenSeries(t), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_series.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden series diverged from %s: the engine changed a reported "+
			"virtual-time number.\nIf the change is intentional, regenerate with -update "+
			"and justify the diff in review.\ngot %d bytes, want %d bytes", path, len(got), len(want))
	}
}
