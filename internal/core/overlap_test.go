package core

import (
	"reflect"
	"testing"
)

// Tests for the nonblocking-collective overlap benchmark family.

func overlapOpts(b Benchmark) Options {
	return Options{
		Benchmark: b, Mode: ModeC, Ranks: 8, PPN: 4,
		MinSize: 64, MaxSize: 16 * 1024,
		Iters: 10, Warmup: 2, LargeIters: 4, LargeWarmup: 1,
	}
}

// TestOverlapBenchmarksRun smokes every overlap benchmark and sanity-checks
// the reported columns.
func TestOverlapBenchmarksRun(t *testing.T) {
	for _, b := range Benchmarks() {
		if b.Kind() != KindOverlap {
			continue
		}
		rep, err := Run(overlapOpts(b))
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if len(rep.Series.Rows) == 0 {
			t.Fatalf("%s: no rows", b)
		}
		for _, row := range rep.Series.Rows {
			if row.CommUs <= 0 {
				t.Errorf("%s size %d: pure comm time %.3f, want > 0", b, row.Size, row.CommUs)
			}
			if row.ComputeUs <= 0 {
				t.Errorf("%s size %d: compute time %.3f, want > 0", b, row.Size, row.ComputeUs)
			}
			if row.OverlapPct < 0 || row.OverlapPct > 100 {
				t.Errorf("%s size %d: overlap %.2f%% outside [0,100]", b, row.Size, row.OverlapPct)
			}
			// Total time covers at least the injected compute, and at most
			// compute + pure comm (serialization), with rounding slack.
			if row.AvgUs < row.ComputeUs*0.99 || row.AvgUs > (row.ComputeUs+row.CommUs)*1.01 {
				t.Errorf("%s size %d: total %.3f outside [compute, compute+comm] = [%.3f, %.3f]",
					b, row.Size, row.AvgUs, row.ComputeUs, row.ComputeUs+row.CommUs)
			}
		}
	}
}

// TestOverlapDeterministic pins that the overlap report is identical across
// repeated runs: virtual-time results must not depend on goroutine
// scheduling even though the schedules advance incrementally.
func TestOverlapDeterministic(t *testing.T) {
	opts := overlapOpts(IAllreduce)
	first, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Series, again.Series) {
			t.Fatalf("run %d diverged:\nfirst %+v\nagain %+v", i, first.Series, again.Series)
		}
	}
}

// TestOverlapParallelSweepMatchesSerial pins bit-identical overlap rows
// between a serial and a parallel algorithm sweep.
func TestOverlapParallelSweepMatchesSerial(t *testing.T) {
	base := overlapOpts(IAllreduce)
	variants, err := AlgorithmVariants(base)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := (Sweep{Base: base, Variants: variants, Workers: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (Sweep{Base: base, Variants: variants, Workers: 4}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Reports {
		if !reflect.DeepEqual(serial.Reports[i].Series, parallel.Reports[i].Series) {
			t.Fatalf("variant %d diverged between serial and parallel sweeps", i)
		}
	}
}

// TestOverlapRequiresCMode pins the validation: the binding layer has no
// nonblocking API, so overlap benchmarks reject Py/Pickle modes.
func TestOverlapRequiresCMode(t *testing.T) {
	opts := overlapOpts(IAllreduce)
	opts.Mode = ModePy
	if _, err := Run(opts); err == nil {
		t.Fatal("overlap benchmark in Py mode should fail validation")
	}
}
