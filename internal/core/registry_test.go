package core

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// Tests for the benchmark registry itself: registration edge cases,
// alias resolution, and metadata-derived listings.

// nopBody is a minimal valid benchmark body for registration tests.
func nopBody(b *Bench) (stats.Row, error) { return stats.Row{}, nil }

// mustPanic asserts that f panics with a message containing every want.
func mustPanic(t *testing.T, f func(), want ...string) {
	t.Helper()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected panic, got none")
		}
		msg, ok := rec.(string)
		if !ok {
			t.Fatalf("panic value %v is not a string", rec)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Errorf("panic %q misses %q", msg, w)
			}
		}
	}()
	f()
}

func TestRegisterBenchmarkDuplicatePanics(t *testing.T) {
	mustPanic(t, func() {
		RegisterBenchmark(BenchmarkSpec{
			Name: Latency, Group: "test", Body: nopBody,
		})
	}, "latency", "collides")
}

func TestRegisterBenchmarkAliasCollisionPanics(t *testing.T) {
	// A fresh name whose alias collides with a registered canonical name.
	mustPanic(t, func() {
		RegisterBenchmark(BenchmarkSpec{
			Name: "totally_new", Aliases: []string{"allreduce"},
			Group: "test", Body: nopBody,
		})
	}, "alias", "allreduce", "collides")
	// ... and with a registered alias ("lat" belongs to latency).
	mustPanic(t, func() {
		RegisterBenchmark(BenchmarkSpec{
			Name: "totally_new", Aliases: []string{"LAT"},
			Group: "test", Body: nopBody,
		})
	}, "alias", "lat", "collides")
	// A panicking registration must leave no partial state behind: the
	// colliding spec's canonical name must not resolve.
	if _, err := LookupBenchmark("totally_new"); err == nil {
		t.Error("failed registration leaked into the registry")
	}
}

func TestRegisterBenchmarkInvalidSpecPanics(t *testing.T) {
	mustPanic(t, func() {
		RegisterBenchmark(BenchmarkSpec{Group: "test", Body: nopBody})
	}, "no name")
	mustPanic(t, func() {
		RegisterBenchmark(BenchmarkSpec{Name: "bodyless", Group: "test"})
	}, "no body")
	mustPanic(t, func() {
		RegisterBenchmark(BenchmarkSpec{Name: "Not-Canonical", Group: "test", Body: nopBody})
	}, "not canonical")
	mustPanic(t, func() {
		RegisterBenchmark(BenchmarkSpec{Name: "groupless", Body: nopBody})
	}, "no group")
}

// TestUnknownBenchmarkErrorListsNames pins the error-message contract the
// closed enum used to provide: an unknown name reports every registered
// benchmark, sorted.
func TestUnknownBenchmarkErrorListsNames(t *testing.T) {
	_, err := ParseBenchmark("bogus")
	if err == nil {
		t.Fatal("bogus benchmark accepted")
	}
	msg := err.Error()
	for _, b := range Benchmarks() {
		if !strings.Contains(msg, string(b)) {
			t.Errorf("unknown-benchmark error misses registered name %q: %s", b, msg)
		}
	}
	// LookupBenchmark reports the same way.
	if _, err := LookupBenchmark("bogus"); err == nil || !strings.Contains(err.Error(), "latency") {
		t.Errorf("LookupBenchmark error should list names, got %v", err)
	}
}

func TestParseBenchmarkAliasesAndNormalization(t *testing.T) {
	cases := map[string]Benchmark{
		"latency":        Latency,
		"lat":            Latency,
		"osu_latency":    Latency,
		"bandwidth":      Bandwidth,
		"Reduce-Scatter": ReduceScatter,
		"MBW_MR":         MultiBWMR,
		"osu_mbw_mr":     MultiBWMR,
		"message_rate":   MultiBWMR,
		"multi_bw":       MultiBandwidth,
	}
	for in, want := range cases {
		got, err := ParseBenchmark(in)
		if err != nil {
			t.Errorf("ParseBenchmark(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseBenchmark(%q) = %s, want %s", in, got, want)
		}
	}
}

// TestOptionsCanonicalizeAliases pins that an alias in Options.Benchmark
// behaves exactly like the canonical name end to end.
func TestOptionsCanonicalizeAliases(t *testing.T) {
	canon, err := Run(quickOpts(Latency, ModeC))
	if err != nil {
		t.Fatal(err)
	}
	aliased, err := Run(quickOpts("lat", ModeC))
	if err != nil {
		t.Fatal(err)
	}
	if len(aliased.Series.Rows) != len(canon.Series.Rows) {
		t.Fatalf("aliased run produced %d rows, canonical %d",
			len(aliased.Series.Rows), len(canon.Series.Rows))
	}
	if aliased.Options.Benchmark != Latency {
		t.Errorf("alias not canonicalised: %q", aliased.Options.Benchmark)
	}
}

// TestBenchmarksListingMetadata pins the derived listings: every spec
// appears in Benchmarks() and DescribeBenchmarks(), Table II order is
// preserved for the built-in prefix, and the multi-pair family is present
// without any dispatch-site edit.
func TestBenchmarksListingMetadata(t *testing.T) {
	all := Benchmarks()
	idx := map[Benchmark]int{}
	for i, b := range all {
		idx[b] = i
	}
	tableII := []Benchmark{
		Latency, Bandwidth, BiBandwidth, MultiLatency,
		Allgather, Allreduce, Alltoall, Barrier, Bcast, Gather,
		ReduceScatter, Reduce, Scatter,
		Allgatherv, Alltoallv, Gatherv, Scatterv,
		IAllreduce, IBcast, IGather, IAllgather, IAlltoall,
		IReduceScatter, IScan,
	}
	for i, b := range tableII {
		at, ok := idx[b]
		if !ok {
			t.Fatalf("built-in benchmark %s missing from Benchmarks()", b)
		}
		if at != i {
			t.Errorf("benchmark %s listed at %d, want Table II position %d", b, at, i)
		}
	}
	for _, b := range []Benchmark{MultiBWMR, MultiBandwidth} {
		if _, ok := idx[b]; !ok {
			t.Errorf("multi-pair benchmark %s missing from Benchmarks()", b)
		}
	}
	listing := DescribeBenchmarks()
	for _, want := range []string{
		"point-to-point:", "blocking collectives:", "vector collectives:",
		"multi-pair point-to-point:", "mbw_mr", "multi_bw", "aliases:",
	} {
		if !strings.Contains(listing, want) {
			t.Errorf("DescribeBenchmarks misses %q:\n%s", want, listing)
		}
	}
}

// TestSpecMetadataDrivesValidation spot-checks that mode/engine/rank rules
// come from the registry: pickle is rejected where the spec omits it,
// overlap benchmarks are C-only, and MinRanks is enforced.
func TestSpecMetadataDrivesValidation(t *testing.T) {
	spec, err := LookupBenchmark("gather")
	if err != nil {
		t.Fatal(err)
	}
	if spec.SupportsMode(ModePickle) {
		t.Error("gather spec should not support pickle")
	}
	if !spec.SupportsMode(ModePy) || !spec.SupportsMode(ModeC) {
		t.Error("gather spec should support C and Py")
	}
	if _, err := Run(quickOpts(Gather, ModePickle)); err == nil {
		t.Error("pickle gather should fail validation")
	}
	if _, err := Run(quickOpts(IAllreduce, ModePy)); err == nil {
		t.Error("Py-mode overlap benchmark should fail validation")
	}
	opts := quickOpts(Allreduce, ModeC)
	opts.Ranks, opts.PPN = 1, 1
	if _, err := Run(opts); err == nil || !strings.Contains(err.Error(), "at least 2 ranks") {
		t.Errorf("MinRanks not enforced: %v", err)
	}
}
