package core

import (
	"fmt"

	"repro/internal/stats"
)

// Sweep runs one benchmark across several configurations (modes, buffer
// libraries, implementations, scales) and collects aligned series -- the
// pattern behind every figure of the paper. A Sweep is declarative: the
// Base options are cloned and each Variant mutates its copy.
type Sweep struct {
	// Base is the configuration shared by all variants.
	Base Options
	// Variants name and derive each configuration.
	Variants []Variant
}

// Variant is one line of a figure.
type Variant struct {
	// Name labels the resulting series (defaults to the derived options'
	// canonical series name).
	Name string
	// Mutate adjusts a copy of the base options.
	Mutate func(*Options)
}

// SweepResult pairs each variant with its report, in declaration order.
type SweepResult struct {
	Reports []*Report
}

// Run executes every variant. Determinism carries over: a Sweep's output
// depends only on its configurations.
func (s Sweep) Run() (*SweepResult, error) {
	if len(s.Variants) == 0 {
		return nil, fmt.Errorf("core: sweep has no variants")
	}
	out := &SweepResult{}
	for i, v := range s.Variants {
		opts := s.Base
		if v.Mutate != nil {
			v.Mutate(&opts)
		}
		rep, err := Run(opts)
		if err != nil {
			name := v.Name
			if name == "" {
				name = fmt.Sprintf("variant %d", i)
			}
			return nil, fmt.Errorf("core: sweep %s: %w", name, err)
		}
		if v.Name != "" {
			rep.Series.Name = v.Name
		}
		out.Reports = append(out.Reports, rep)
	}
	return out, nil
}

// Series returns the variants' series, aligned for tabling or charting.
func (r *SweepResult) Series() []*stats.Series {
	out := make([]*stats.Series, len(r.Reports))
	for i, rep := range r.Reports {
		out[i] = &rep.Series
	}
	return out
}

// Table renders the sweep as a size-by-variant table.
func (r *SweepResult) Table(title, metric string) stats.Table {
	return stats.Table{Title: title, Metric: metric, Series: r.Series()}
}

// BaselinePair is the most common sweep: the benchmark under ModeC (OMB)
// and ModePy (OMB-Py), returning (baseline, py) series.
func BaselinePair(base Options) (*stats.Series, *stats.Series, error) {
	sw := Sweep{
		Base: base,
		Variants: []Variant{
			{Name: "OMB", Mutate: func(o *Options) { o.Mode = ModeC }},
			{Name: "OMB-Py", Mutate: func(o *Options) { o.Mode = ModePy }},
		},
	}
	res, err := sw.Run()
	if err != nil {
		return nil, nil, err
	}
	return &res.Reports[0].Series, &res.Reports[1].Series, nil
}
