package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mpi"
	"repro/internal/stats"
)

// Sweep runs one benchmark across several configurations (modes, buffer
// libraries, implementations, algorithms, scales) and collects aligned
// series -- the pattern behind every figure of the paper. A Sweep is
// declarative: the Base options are cloned and each Variant mutates its
// copy.
type Sweep struct {
	// Base is the configuration shared by all variants.
	Base Options
	// Variants name and derive each configuration.
	Variants []Variant
	// Workers bounds how many variants run concurrently. Every variant
	// owns an independent virtual world, so scheduling cannot change the
	// numbers: results are bit-identical to serial execution and reported
	// in declaration order. 0 takes the process default (serial unless
	// SetDefaultSweepWorkers raised it); negative uses GOMAXPROCS.
	Workers int
}

// defaultSweepWorkers is the process-wide worker count applied when
// Sweep.Workers is zero; the CLIs' -parallel flag raises it.
var defaultSweepWorkers = 1

// SetDefaultSweepWorkers installs the process-wide sweep parallelism
// (values below 1 reset to serial). It is meant to be called once at CLI
// startup.
func SetDefaultSweepWorkers(n int) {
	if n < 1 {
		n = 1
	}
	defaultSweepWorkers = n
}

// Variant is one line of a figure.
type Variant struct {
	// Name labels the resulting series (defaults to the derived options'
	// canonical series name).
	Name string
	// Mutate adjusts a copy of the base options.
	Mutate func(*Options)
}

// SweepResult pairs each variant with its report, in declaration order.
type SweepResult struct {
	Reports []*Report
}

// Run executes every variant on a bounded worker pool. Determinism carries
// over from Run: each variant simulates an independent virtual world, so
// the output depends only on the configurations, never on the schedule --
// reports come back in declaration order and bit-identical to a serial
// sweep. If variants fail, the error of the earliest-declared failure is
// returned, as a serial sweep would.
func (s Sweep) Run() (*SweepResult, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cancellation: each variant runs under ctx (its
// expiry is classified in that variant's Report.Failure), and a canceled
// sweep stops launching queued variants instead of draining the whole
// variant list — the producer and the workers both observe ctx. When the
// cancel left variants unlaunched, the partial sweep is reported as an
// error wrapping the context's cause; a sweep whose variants all completed
// before the cancel returns its full result.
func (s Sweep) RunContext(ctx context.Context) (*SweepResult, error) {
	if len(s.Variants) == 0 {
		return nil, fmt.Errorf("core: sweep has no variants")
	}
	workers := s.Workers
	if workers == 0 {
		workers = defaultSweepWorkers
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(s.Variants) {
		workers = len(s.Variants)
	}

	reports := make([]*Report, len(s.Variants))
	errs := make([]error, len(s.Variants))
	jobs := make(chan int)
	// failed makes the pool fail fast: once any variant errors, queued
	// variants are abandoned (in-flight ones finish). With one worker this
	// is exactly the serial stop-at-first-error; with several, the
	// earliest-declared recorded error is reported either way.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() || ctx.Err() != nil {
					continue
				}
				reports[i], errs[i] = s.runVariant(ctx, i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	// The producer itself is fail-fast and cancellation-aware: it stops
	// handing out queued variants on the first recorded error or cancel
	// instead of pushing the whole list through workers that would only
	// skip them one by one.
	for i := range s.Variants {
		if failed.Load() || ctx.Err() != nil {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			name := s.Variants[i].Name
			if name == "" {
				name = fmt.Sprintf("variant %d", i)
			}
			return nil, fmt.Errorf("core: sweep %s: %w", name, err)
		}
	}
	if ctx.Err() != nil {
		launched := 0
		for _, r := range reports {
			if r != nil {
				launched++
			}
		}
		if launched < len(s.Variants) {
			return nil, fmt.Errorf("core: sweep canceled after %d of %d variants: %w",
				launched, len(s.Variants), context.Cause(ctx))
		}
	}
	return &SweepResult{Reports: reports}, nil
}

// runVariant derives and runs the i-th configuration under the sweep's
// context.
func (s Sweep) runVariant(ctx context.Context, i int) (*Report, error) {
	v := s.Variants[i]
	opts := s.Base
	if v.Mutate != nil {
		v.Mutate(&opts)
	}
	rep, err := RunContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	if v.Name != "" {
		rep.Series.Name = v.Name
	}
	return rep, nil
}

// AlgorithmVariants returns one sweep variant per registered algorithm of
// the benchmark's collective, each forcing that algorithm by name.
// Algorithms that are infeasible for the options' rank count (recursive
// doubling and halving need power-of-two groups) are skipped rather than
// left to fail at run time.
func AlgorithmVariants(opts Options) ([]Variant, error) {
	coll, ok := opts.Benchmark.Collective()
	if !ok {
		return nil, fmt.Errorf("core: benchmark %s has no selectable algorithms", opts.Benchmark)
	}
	ranks := opts.withDefaults().Ranks
	var variants []Variant
	for _, a := range mpi.Algorithms(coll) {
		if !a.FeasibleFor(mpi.Selection{CommSize: ranks}) {
			continue
		}
		name := a.Name
		variants = append(variants, Variant{Name: name, Mutate: func(o *Options) {
			o.Algorithms = map[string]string{string(coll): name}
		}})
	}
	return variants, nil
}

// Series returns the variants' series, aligned for tabling or charting.
func (r *SweepResult) Series() []*stats.Series {
	out := make([]*stats.Series, len(r.Reports))
	for i, rep := range r.Reports {
		out[i] = &rep.Series
	}
	return out
}

// Table renders the sweep as a size-by-variant table.
func (r *SweepResult) Table(title, metric string) stats.Table {
	return stats.Table{Title: title, Metric: metric, Series: r.Series()}
}

// BaselinePair is the most common sweep: the benchmark under ModeC (OMB)
// and ModePy (OMB-Py), returning (baseline, py) series.
func BaselinePair(base Options) (*stats.Series, *stats.Series, error) {
	sw := Sweep{
		Base: base,
		Variants: []Variant{
			{Name: "OMB", Mutate: func(o *Options) { o.Mode = ModeC }},
			{Name: "OMB-Py", Mutate: func(o *Options) { o.Mode = ModePy }},
		},
	}
	res, err := sw.Run()
	if err != nil {
		return nil, nil, err
	}
	return &res.Reports[0].Series, &res.Reports[1].Series, nil
}
