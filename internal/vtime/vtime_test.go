package vtime

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("zero clock should start at the epoch")
	}
	if got := c.Advance(1.5); got != 1.5 {
		t.Errorf("Advance returned %v", got)
	}
	if got := c.Advance(0); got != 1.5 {
		t.Errorf("zero advance moved the clock to %v", got)
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance must panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestAdvanceToNeverRewinds(t *testing.T) {
	var c Clock
	c.Advance(10)
	if got := c.AdvanceTo(5); got != 10 {
		t.Errorf("AdvanceTo(5) rewound to %v", got)
	}
	if got := c.AdvanceTo(20); got != 20 {
		t.Errorf("AdvanceTo(20) = %v", got)
	}
}

func TestAdvanceToMonotoneProperty(t *testing.T) {
	prop := func(steps []float64) bool {
		var c Clock
		prev := c.Now()
		for _, s := range steps {
			if s < 0 {
				s = -s
			}
			c.AdvanceTo(Micros(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Error("Max wrong")
	}
	if Min(1, 2) != 1 || Min(3, 2) != 2 {
		t.Error("Min wrong")
	}
}

func TestConversionsAndString(t *testing.T) {
	m := Micros(1_500_000)
	if m.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", m.Seconds())
	}
	if m.Millis() != 1500 {
		t.Errorf("Millis = %v", m.Millis())
	}
	cases := map[Micros]string{
		Micros(0.5):       "0.500us",
		Micros(1500):      "1.500ms",
		Micros(2_500_000): "2.500s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(in), got, want)
		}
	}
}

func TestSet(t *testing.T) {
	var c Clock
	c.Advance(42)
	c.Set(0)
	if c.Now() != 0 {
		t.Error("Set(0) should rewind")
	}
}
