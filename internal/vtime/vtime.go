// Package vtime provides the virtual-time primitives used by the simulated
// MPI runtime. All benchmark timing in this repository is virtual: each rank
// carries a deterministic clock measured in microseconds, and communication
// costs computed by the network model advance it. Wall-clock time never
// enters a measurement, which makes every reported number reproducible
// bit-for-bit across runs and machines.
package vtime

import (
	"fmt"
	"math"
)

// Micros is a duration or instant in virtual microseconds. The zero value is
// the epoch at which every rank in a world starts.
type Micros float64

// Seconds converts a virtual duration to seconds.
func (m Micros) Seconds() float64 { return float64(m) / 1e6 }

// Millis converts a virtual duration to milliseconds.
func (m Micros) Millis() float64 { return float64(m) / 1e3 }

// String renders the duration with a unit chosen for readability.
func (m Micros) String() string {
	v := float64(m)
	switch {
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.3fs", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.3fms", v/1e3)
	default:
		return fmt.Sprintf("%.3fus", v)
	}
}

// Max returns the later of two instants.
func Max(a, b Micros) Micros {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two instants.
func Min(a, b Micros) Micros {
	if a < b {
		return a
	}
	return b
}

// Clock is the per-rank virtual clock. It is owned by exactly one goroutine
// (the rank process) and therefore needs no locking; cross-rank time flows
// only through message timestamps.
type Clock struct {
	now Micros
}

// Now returns the current virtual instant.
func (c *Clock) Now() Micros { return c.now }

// Advance moves the clock forward by d. Negative advances are a programming
// error in the cost model and panic so they are caught in tests.
func (c *Clock) Advance(d Micros) Micros {
	if d < 0 {
		panic(fmt.Sprintf("vtime: negative clock advance %v", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock to instant t if t is in the future; a rank that
// receives a message stamped earlier than its own clock keeps its clock.
func (c *Clock) AdvanceTo(t Micros) Micros {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Set forces the clock to t. Used when a world is reset between benchmark
// repetitions.
func (c *Clock) Set(t Micros) { c.now = t }
