package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// cancelEngines are the engines the cancellation contract covers.
var cancelEngines = []string{"goroutine", "event"}

// hugeWorldOptionsOn is hugeWorldOptions retargeted at an engine.
func hugeWorldOptionsOn(engine string, ranks int) core.Options {
	o := hugeWorldOptions(ranks, false)
	o.Engine = engine
	return o
}

// waitGoroutines polls until the process goroutine count drops back to (or
// below) target+slack, failing after a deadline. Run returns after every
// rank goroutine finished, but exited goroutines are reaped asynchronously,
// so the count needs a moment to settle.
func waitGoroutines(t *testing.T, target int) {
	t.Helper()
	const slack = 10
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= target+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine count stuck at %d, baseline %d: canceled run leaked goroutines",
				runtime.NumGoroutine(), target)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelPreCanceledDeterministic pins the deterministic cancel site: a
// context canceled before the run starts fails every rank at its first
// collective entry, so repeated runs — and both engines — report
// bit-identical structured failures.
func TestCancelPreCanceledDeterministic(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var bodies []string
	for _, engine := range cancelEngines {
		for round := 0; round < 2; round++ {
			rep, err := core.RunContext(ctx, hugeWorldOptionsOn(engine, 4096))
			if err != nil {
				t.Fatalf("%s round %d: %v", engine, round, err)
			}
			if rep.Failure == nil {
				t.Fatalf("%s round %d: pre-canceled run reported no failure", engine, round)
			}
			if rep.Failure.Code != "canceled" {
				t.Fatalf("%s round %d: failure code %q, want %q", engine, round, rep.Failure.Code, "canceled")
			}
			if len(rep.Failure.Failed) != 0 {
				t.Fatalf("%s round %d: cancellation listed dead ranks %v; nobody died", engine, round, rep.Failure.Failed)
			}
			body, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, string(body))
		}
	}
	for i, body := range bodies[1:] {
		if body != bodies[0] {
			t.Errorf("pre-canceled failure reports diverge:\n  first: %s\n  other (%d): %s", bodies[0], i+1, body)
		}
	}
}

// TestCancelMidRunHugeWorld cancels a 4096-rank sweep mid-flight on each
// engine and pins the whole robustness contract: the run returns promptly
// (within 250ms of the cancel), the outcome is a classified "canceled"
// failure rather than an error or a hang, no goroutines leak, and the
// world's cross-run pools stay reusable (a follow-up clean run succeeds).
func TestCancelMidRunHugeWorld(t *testing.T) {
	if testing.Short() {
		t.Skip("huge-world run in -short mode")
	}
	for _, engine := range cancelEngines {
		t.Run(engine, func(t *testing.T) {
			// Warm the engine's pools before taking the goroutine baseline:
			// the event engine legitimately retains one recycled coroutine
			// worker per rank across runs (PR 8's pooled worker set), so a
			// cold baseline would misread that pool as a leak. One clean
			// single-iteration run populates it.
			warm := hugeWorldOptionsOn(engine, 4096)
			warm.MinSize, warm.MaxSize = 16384, 16384
			warm.Iters, warm.Warmup, warm.LargeIters, warm.LargeWarmup = 1, 1, 1, 1
			if _, err := core.RunContext(context.Background(), warm); err != nil {
				t.Fatalf("warm run: %v", err)
			}
			baseline := runtime.NumGoroutine()
			// Promptness: the engines poll the latched flag on a short leash
			// (cancelPollMask events / the next blocking primitive), so the
			// unwind is bounded. The bound is wall-clock and the suite runs
			// on shared machines, so a few attempts absorb scheduler noise;
			// the race detector slows everything by an order of magnitude,
			// so only classification is asserted there.
			const bound = 250 * time.Millisecond
			var elapsed time.Duration
			prompt := false
			for attempt := 0; attempt < 3 && !prompt; attempt++ {
				ctx, cancel := context.WithCancel(context.Background())
				var canceledAt time.Time
				timer := time.AfterFunc(2*time.Millisecond, func() {
					canceledAt = time.Now()
					cancel()
				})
				rep, err := core.RunContext(ctx, hugeWorldOptionsOn(engine, 4096))
				returned := time.Now()
				timer.Stop()
				cancel()
				if err != nil {
					t.Fatalf("canceled run returned an error instead of a classified report: %v", err)
				}
				if rep.Failure == nil {
					t.Skip("run completed before the cancel fired; nothing to assert")
				}
				if rep.Failure.Code != "canceled" {
					t.Fatalf("failure code %q, want %q (message %q)", rep.Failure.Code, "canceled", rep.Failure.Message)
				}
				elapsed = returned.Sub(canceledAt)
				prompt = elapsed <= bound
			}
			if !prompt && !raceEnabled {
				t.Errorf("canceled 4096-rank run took %v to unwind, want <= %v", elapsed, bound)
			}
			waitGoroutines(t, baseline)

			// Pools must survive a cancel: a clean warm run on the same
			// engine right after must succeed and report rows.
			small := hugeWorldOptionsOn(engine, 64)
			small.PPN = 4
			clean, err := core.RunContext(context.Background(), small)
			if err != nil {
				t.Fatalf("post-cancel run failed: %v", err)
			}
			if clean.Failure != nil {
				t.Fatalf("post-cancel run inherited a failure: %+v", clean.Failure)
			}
			if len(clean.Series.Rows) == 0 {
				t.Fatal("post-cancel run reported no rows")
			}
		})
	}
}

// TestCancelThenWarmRunStaysPooled proves a canceled huge-world run does
// not poison the slab pools or caches: warm 4096-rank runs after a cancel
// still fit under the pinned allocation ceiling of
// TestHugeWorldAllocRegression.
func TestCancelThenWarmRunStaysPooled(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under the race detector")
	}
	if testing.Short() {
		t.Skip("huge-world run in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(2*time.Millisecond, cancel)
	if _, err := core.RunContext(ctx, hugeWorldOptions(4096, false)); err != nil {
		t.Fatal(err)
	}
	hugeWorldRun(t, 4096)
	hugeWorldRun(t, 4096)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	hugeWorldRun(t, 4096)
	runtime.ReadMemStats(&after)
	got := after.Mallocs - before.Mallocs
	const ceiling = 109_188 // TestHugeWorldAllocRegression's 4096-rank pin
	t.Logf("post-cancel warm 4096-rank run: %d allocations (ceiling %d)", got, ceiling)
	if got > ceiling {
		t.Errorf("warm run after a cancel made %d allocations, ceiling %d: cancel poisoned a pool", got, ceiling)
	}
}

// TestCancelTimeoutClassification pins the timeout flavor end to end: an
// expired deadline classifies as code "timeout" and the text rendering
// leads with "# FAILED: timeout".
func TestCancelTimeoutClassification(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	rep, err := core.RunContext(ctx, core.Options{
		Benchmark: core.Latency, Mode: core.ModeC, Iters: 2, Warmup: 1, MaxSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure == nil || rep.Failure.Code != "timeout" {
		t.Fatalf("failure = %+v, want code %q", rep.Failure, "timeout")
	}
	if text := rep.Text(); !strings.Contains(text, "# FAILED: timeout") {
		t.Errorf("Text() lacks the \"# FAILED: timeout\" marker:\n%s", text)
	}
}

// TestSweepCancelStopsLaunching pins the sweep pool's cancellation
// semantics: a cancel observed mid-sweep stops the producer from handing
// out queued variants, and the partial sweep surfaces as an error naming
// how far it got. The cancel point is deterministic — variant 1's Mutate
// hook fires it — so the serial result is pinned exactly.
func TestSweepCancelStopsLaunching(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base := core.Options{Benchmark: core.Latency, Mode: core.ModeC, Iters: 2, Warmup: 1, MaxSize: 4}
	variants := make([]core.Variant, 5)
	for i := range variants {
		iters := 2 + i // distinct configurations
		variants[i] = core.Variant{Name: fmt.Sprintf("v%d", i), Mutate: func(o *core.Options) {
			o.Iters = iters
			if iters == 3 { // variant 1 pulls the plug as it starts
				cancel()
			}
		}}
	}
	_, err := core.Sweep{Base: base, Variants: variants, Workers: 1}.RunContext(ctx)
	if err == nil {
		t.Fatal("partially-launched canceled sweep returned no error")
	}
	if want := "2 of 5"; !strings.Contains(err.Error(), want) {
		t.Errorf("sweep error %q does not report the launch count %q", err, want)
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("sweep error %q does not name the cancellation", err)
	}
}

// TestSweepPreCanceledParallelMatchesSerial pins that the cancel behavior
// is schedule-independent where it can be: a sweep under an
// already-canceled context reports the same error serial and parallel.
func TestSweepPreCanceledParallelMatchesSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := core.Options{Benchmark: core.Latency, Mode: core.ModeC, Iters: 2, Warmup: 1, MaxSize: 4}
	variants := make([]core.Variant, 4)
	for i := range variants {
		iters := 2 + i
		variants[i] = core.Variant{Name: fmt.Sprintf("v%d", i), Mutate: func(o *core.Options) { o.Iters = iters }}
	}
	var msgs []string
	for _, workers := range []int{1, 4} {
		_, err := core.Sweep{Base: base, Variants: variants, Workers: workers}.RunContext(ctx)
		if err == nil {
			t.Fatalf("workers=%d: pre-canceled sweep returned no error", workers)
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("serial and parallel pre-canceled sweeps diverge:\n  serial:   %s\n  parallel: %s", msgs[0], msgs[1])
	}
}
