// Allreduce scaling study: the workload class the paper's introduction
// motivates (distributed ML gradient aggregation). It sweeps node counts
// and processes-per-node on the Frontera model and reports the Allreduce
// latency of native MPI vs mpi4py, including the full-subscription regime
// of the paper's Figures 14-15 where the binding layer's THREAD_MULTIPLE
// initialisation hurts most. Run with:
//
//	go run ./examples/allreduce_scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

func main() {
	const size = 64 * 1024 // a typical gradient-bucket size in bytes

	type config struct {
		nodes, ppn int
		timingOnly bool
	}
	configs := []config{
		{2, 1, false},
		{4, 1, false},
		{8, 1, false},
		{16, 1, false},
		{16, 8, false},
		{16, 56, true}, // full subscription: 896 ranks, timing-only
	}

	fmt.Println("Allreduce latency at 64 KiB on the Frontera model")
	fmt.Printf("%-8s %-6s %-8s %14s %14s %10s\n",
		"nodes", "ppn", "ranks", "OMB(us)", "OMB-Py(us)", "ratio")
	for _, cfg := range configs {
		ranks := cfg.nodes * cfg.ppn
		run := func(mode core.Mode) float64 {
			rep, err := core.Run(core.Options{
				Benchmark:  core.Allreduce,
				Cluster:    "frontera",
				Mode:       mode,
				Buffer:     pybuf.NumPy,
				Ranks:      ranks,
				PPN:        cfg.ppn,
				MinSize:    size,
				MaxSize:    size,
				Iters:      10,
				Warmup:     2,
				TimingOnly: cfg.timingOnly,
			})
			if err != nil {
				log.Fatalf("%d ranks (%v): %v", ranks, mode, err)
			}
			row, ok := rep.Series.Get(size)
			if !ok {
				log.Fatalf("%d ranks: no row for %s", ranks, stats.HumanBytes(size))
			}
			return row.AvgUs
		}
		c := run(core.ModeC)
		py := run(core.ModePy)
		fmt.Printf("%-8d %-6d %-8d %14.2f %14.2f %10.2f\n",
			cfg.nodes, cfg.ppn, ranks, c, py, py/c)
	}
	fmt.Println("\nNote the jump at 56 ppn: mpi4py initialises MPI with THREAD_MULTIPLE,")
	fmt.Println("which oversubscribes cores under full subscription (paper Figs. 14-15).")
}
