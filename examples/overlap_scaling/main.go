// Overlap scaling: how much Iallreduce communication can injected compute
// hide as the job grows? For each rank count the osu_iallreduce-style
// overlap benchmark posts the collective, injects a compute block calibrated
// to the pure communication time, waits, and reports pure-comm time, total
// time and overlap percentage per message size. Run with:
//
//	go run ./examples/overlap_scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	sizes := []int{1024, 8 * 1024, 64 * 1024}
	for _, ranks := range []int{4, 8, 16, 32} {
		rep, err := core.Run(core.Options{
			Benchmark: core.IAllreduce,
			Cluster:   "frontera",
			Mode:      core.ModeC,
			Ranks:     ranks,
			PPN:       4,
			MinSize:   sizes[0],
			MaxSize:   sizes[len(sizes)-1],
			Iters:     20,
			Warmup:    2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# iallreduce overlap, %d ranks (ppn 4)\n", ranks)
		fmt.Printf("%-10s %12s %12s %12s\n", "size", "comm(us)", "total(us)", "overlap(%)")
		for _, want := range sizes {
			row, ok := rep.Series.Get(want)
			if !ok {
				continue
			}
			fmt.Printf("%-10s %12.2f %12.2f %12.1f\n",
				stats.HumanBytes(row.Size), row.CommUs, row.AvgUs, row.OverlapPct)
		}
		fmt.Println()
	}
}
