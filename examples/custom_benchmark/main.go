// Custom benchmark: register a workload the suite has never heard of and
// run it like any built-in — the point of the open benchmark registry.
//
// The workload is a "ring relay": a token of the current message size hops
// rank 0 → 1 → ... → p-1 → 0, and the reported latency is the per-hop
// time. Registering it takes one RegisterBenchmark call; the run loop,
// option validation, size sweep, report columns, -parallel sweeps and both
// execution engines pick it up from the spec with no edits anywhere else.
// Run with:
//
//	go run ./examples/custom_benchmark
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vtime"
)

func init() {
	core.RegisterBenchmark(core.BenchmarkSpec{
		Name:     "ring_relay",
		Aliases:  []string{"relay"},
		Kind:     core.KindPtPt,
		Group:    "examples",
		Summary:  "token relay around the full rank ring, per-hop latency",
		MinRanks: 2,
		Modes:    []core.Mode{core.ModeC},
		Body:     runRingRelay,
	})
}

// runRingRelay circulates one token around the ring and reports the mean
// per-hop latency, using only the exported Bench harness contract.
func runRingRelay(b *core.Bench) (stats.Row, error) {
	c := b.Comm()
	p, rank := c.Size(), c.Rank()
	next, prev := (rank+1)%p, (rank+p-1)%p
	iters, warmup := b.Iters(), b.Warmup()
	if err := b.Barrier(); err != nil {
		return stats.Row{}, err
	}
	var start vtime.Micros
	for i := 0; i < warmup+iters; i++ {
		if i == warmup {
			start = b.Wtime()
		}
		if rank == 0 {
			if err := b.Send(next, 1); err != nil {
				return stats.Row{}, err
			}
			if err := b.Recv(prev, 1); err != nil {
				return stats.Row{}, err
			}
		} else {
			if err := b.Recv(prev, 1); err != nil {
				return stats.Row{}, err
			}
			if err := b.Send(next, 1); err != nil {
				return stats.Row{}, err
			}
		}
	}
	perHop := float64(b.Wtime()-start) / float64(iters) / float64(p)
	return b.ReduceRow(perHop, 0)
}

func main() {
	rep, err := core.Run(core.Options{
		Benchmark: "ring_relay",
		Cluster:   "frontera",
		Ranks:     8,
		PPN:       4,
		MinSize:   8,
		MaxSize:   64 * 1024,
		Iters:     20,
		Warmup:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ring_relay: a workload the suite never shipped, run through the registry")
	fmt.Print(rep.Text())

	// The registered workload is a first-class citizen: it parses by
	// alias and shows up in the -list metadata like any built-in.
	if _, err := core.ParseBenchmark("relay"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nregistry listing now includes:")
	fmt.Printf("  ring_relay (alias \"relay\"), group %q\n", "examples")
}
