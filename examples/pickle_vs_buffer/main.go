// Pickle vs direct buffers: mpi4py offers two method families -- the
// direct-buffer Send/Recv (upper-case in mpi4py) and the serializing
// send/recv (lower-case), here SendObject/RecvObject. This example first
// demonstrates both APIs on a tiny 4-rank world (with payload verification
// through the real serializer), then reproduces the paper's Figures 30-31:
// pickle costs about a microsecond on small messages and diverges sharply
// past 64 KiB. Run with:
//
//	go run ./examples/pickle_vs_buffer
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/mpi4py"
	"repro/internal/netmodel"
	"repro/internal/pybuf"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	demoObjectAPI()
	compareLatency()
}

// demoObjectAPI sends a NumPy array between two ranks through the pickle
// path and verifies the round-trip.
func demoObjectAPI() {
	place, err := topology.NewPlacement(&topology.Frontera, 2, 2, topology.Block, false)
	if err != nil {
		log.Fatal(err)
	}
	world, err := mpi.NewWorld(mpi.Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		PyMode:    true,
		CarryData: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(func(p *mpi.Proc) error {
		comm, err := mpi4py.Wrap(p.CommWorld())
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			arr := pybuf.NewNumPy(mpi.Float64, 4)
			for i := 0; i < 4; i++ {
				pybuf.SetFloat64(arr, i, float64(i)*1.5)
			}
			return comm.SendObject(arr, 1, 0)
		}
		obj, _, err := comm.RecvObject(0, 0, nil)
		if err != nil {
			return err
		}
		fmt.Printf("rank 1 unpickled a %v array of %d float64s: ",
			obj.Library(), obj.Count())
		for i := 0; i < obj.Count(); i++ {
			fmt.Printf("%.1f ", pybuf.GetFloat64(obj, i))
		}
		fmt.Println()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}

// compareLatency reproduces Figures 30-31.
func compareLatency() {
	run := func(mode core.Mode) *stats.Series {
		rep, err := core.Run(core.Options{
			Benchmark: core.Latency,
			Cluster:   "frontera",
			Mode:      mode,
			Buffer:    pybuf.NumPy,
			Ranks:     2,
			PPN:       1,
			MinSize:   1,
			MaxSize:   1 << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		return &rep.Series
	}
	direct := run(core.ModePy)
	pickle := run(core.ModePickle)

	fmt.Println("\nInter-node latency: pickle vs direct buffer (cf. paper Figs. 30-31)")
	fmt.Printf("%-10s %12s %12s %12s\n", "size", "direct(us)", "pickle(us)", "overhead")
	for _, r := range pickle.Rows {
		d, _ := direct.Get(r.Size)
		fmt.Printf("%-10s %12.2f %12.2f %12.2f\n",
			stats.HumanBytes(r.Size), d.AvgUs, r.AvgUs, r.AvgUs-d.AvgUs)
	}
	worst, at := stats.MaxOverheadUs(pickle, direct)
	fmt.Printf("\nmax pickle overhead: %.0f us at %s (paper: up to 1510 us, diverging past 64K)\n",
		worst, stats.HumanBytes(at))
}
