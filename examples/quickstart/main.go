// Quickstart: measure the ping-pong latency of the simulated MPI runtime on
// Frontera, once as the C baseline (OMB) and once through the mpi4py
// binding layer (OMB-Py), and print the per-size overhead -- the experiment
// behind the paper's Figure 2. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

func main() {
	base := core.Options{
		Benchmark: core.Latency,
		Cluster:   "frontera",
		Ranks:     2,
		PPN:       2, // both ranks on one node: intra-node latency
		MinSize:   1,
		MaxSize:   8 * 1024,
	}

	cOpts := base
	cOpts.Mode = core.ModeC
	omb, err := core.Run(cOpts)
	if err != nil {
		log.Fatal(err)
	}

	pyOpts := base
	pyOpts.Mode = core.ModePy
	pyOpts.Buffer = pybuf.NumPy
	ombpy, err := core.Run(pyOpts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Intra-node CPU latency on the Frontera model (cf. paper Fig. 2)")
	fmt.Printf("%-10s %12s %12s %12s\n", "size", "OMB(us)", "OMB-Py(us)", "overhead")
	for _, r := range ombpy.Series.Rows {
		b, _ := omb.Series.Get(r.Size)
		fmt.Printf("%-10s %12.2f %12.2f %12.2f\n",
			stats.HumanBytes(r.Size), b.AvgUs, r.AvgUs, r.AvgUs-b.AvgUs)
	}
	fmt.Printf("\naverage OMB-Py overhead: %.2f us (paper reports 0.44 us)\n",
		stats.AvgOverheadUs(&ombpy.Series, &omb.Series))
}
