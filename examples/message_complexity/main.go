// Message-complexity study: attaches the runtime's event tracer to several
// collectives and compares the recorded message counts and byte volumes
// against the textbook complexity of the algorithm each size selects --
// the kind of analysis a benchmark-suite user does when deciding which
// collective (or which message size regime) a workload should use.
// Run with:
//
//	go run ./examples/message_complexity
package main

import (
	"fmt"
	"log"

	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/stats"
	"repro/internal/topology"
)

func main() {
	const ranks, ppn = 16, 4

	type study struct {
		name   string
		bytes  int
		theory string
		run    func(c *mpi.Comm, n int) error
	}
	studies := []study{
		{"barrier", 0, "p*ceil(log2 p) zero-byte msgs (dissemination)",
			func(c *mpi.Comm, n int) error { return c.Barrier() }},
		{"bcast 1KiB", 1024, "p-1 msgs (binomial tree)",
			func(c *mpi.Comm, n int) error { return c.BcastN(nil, n, 0) }},
		{"allreduce 1KiB", 1024, "p*log2 p msgs (recursive doubling)",
			func(c *mpi.Comm, n int) error { return c.AllreduceN(nil, nil, n, mpi.Float64, mpi.OpSum) }},
		{"allreduce 256KiB", 256 * 1024, "reduce-scatter + allgather (Rabenseifner)",
			func(c *mpi.Comm, n int) error { return c.AllreduceN(nil, nil, n, mpi.Float64, mpi.OpSum) }},
		{"allgather 1KiB", 1024, "p*log2 p msgs (recursive doubling)",
			func(c *mpi.Comm, n int) error { return c.AllgatherN(nil, n, nil) }},
		{"allgather 64KiB", 64 * 1024, "p*(p-1) msgs (ring)",
			func(c *mpi.Comm, n int) error { return c.AllgatherN(nil, n, nil) }},
		{"alltoall 256B", 256, "packed log-round exchange (Bruck)",
			func(c *mpi.Comm, n int) error { return c.AlltoallN(nil, n, nil) }},
		{"alltoall 8KiB", 8 * 1024, "p*(p-1) msgs (pairwise)",
			func(c *mpi.Comm, n int) error { return c.AlltoallN(nil, n, nil) }},
	}

	fmt.Printf("Collective message complexity on %d ranks (%d ppn, Frontera model)\n\n", ranks, ppn)
	fmt.Printf("%-18s %8s %12s %10s %12s  %s\n",
		"collective", "msgs", "bytes", "eager", "makespan", "algorithm")
	for _, st := range studies {
		place, err := topology.NewPlacement(&topology.Frontera, ranks, ppn, topology.Block, false)
		if err != nil {
			log.Fatal(err)
		}
		trace := mpi.NewTrace()
		world, err := mpi.NewWorld(mpi.Config{
			Placement: place,
			Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
			CarryData: false, // timing-only: we study message counts
			Trace:     trace,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := world.Run(func(p *mpi.Proc) error {
			return st.run(p.CommWorld(), st.bytes)
		}); err != nil {
			log.Fatal(err)
		}
		s := trace.Summarize()
		fmt.Printf("%-18s %8d %12d %10d %12v  %s\n",
			st.name, s.Messages, s.Bytes, s.EagerMsgs, s.Makespan, st.theory)
	}

	fmt.Println("\nPer-link breakdown of the 64KiB ring allgather:")
	place, _ := topology.NewPlacement(&topology.Frontera, ranks, ppn, topology.Block, false)
	trace := mpi.NewTrace()
	world, err := mpi.NewWorld(mpi.Config{
		Placement: place,
		Model:     netmodel.MustNew(&topology.Frontera, netmodel.MVAPICH2),
		CarryData: false,
		Trace:     trace,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := world.Run(func(p *mpi.Proc) error {
		return p.CommWorld().AllgatherN(nil, 64*1024, nil)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Print(trace.Summarize())
	fmt.Printf("\n(ring neighbours are mostly intra-node at %d ppn: %s of traffic stays on-node)\n",
		ppn, stats.HumanBytes(int(trace.Summarize().BytesByLink[topology.LinkSameSocket]+
			trace.Summarize().BytesByLink[topology.LinkSameNode])))
}
