// GPU buffer comparison: runs the point-to-point latency benchmark on the
// Bridges-2 model with each GPU-aware buffer library (CuPy, PyCUDA, Numba)
// against the CUDA-aware C baseline, reproducing the paper's Figures 20-21
// finding that CuPy and PyCUDA stage device buffers about twice as fast as
// Numba. Also demonstrates the simulated CUDA Array Interface directly.
// Run with:
//
//	go run ./examples/gpu_buffers
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mpi"
	"repro/internal/pybuf"
	"repro/internal/stats"
)

func main() {
	// First, the CAI protocol itself: allocate a CuPy-style array on a
	// simulated V100 and resolve its device pointer the way mpi4py does.
	gpu := device.NewGPU(0, 0)
	arr, err := pybuf.NewGPUArray(pybuf.CuPy, gpu, mpi.Float64, 1024)
	if err != nil {
		log.Fatal(err)
	}
	cai := arr.CAI()
	fmt.Printf("CUDA Array Interface: shape=%v typestr=%s data=%#x version=%d\n",
		cai.Shape, cai.Typestr, cai.Data, cai.Version)
	reg := device.NewRegistry([]*device.GPU{gpu})
	alloc, err := reg.Resolve(cai.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolved to a %d-byte device allocation (device %d)\n\n",
		alloc.Size(), alloc.Device().ID())
	if err := arr.Free(); err != nil {
		log.Fatal(err)
	}

	// Then the benchmark: GPU-to-GPU latency across the two Bridges-2
	// nodes for every buffer library.
	base := core.Options{
		Benchmark: core.Latency,
		Cluster:   "bridges2",
		Ranks:     2,
		PPN:       1,
		UseGPU:    true,
		MinSize:   8,
		MaxSize:   64 * 1024,
	}
	cOpts := base
	cOpts.Mode = core.ModeC
	omb, err := core.Run(cOpts)
	if err != nil {
		log.Fatal(err)
	}

	series := map[pybuf.Library]*stats.Series{}
	for _, lib := range pybuf.GPULibraries() {
		opts := base
		opts.Mode = core.ModePy
		opts.Buffer = lib
		rep, err := core.Run(opts)
		if err != nil {
			log.Fatalf("%v: %v", lib, err)
		}
		series[lib] = &rep.Series
	}

	fmt.Println("GPU p2p latency on the Bridges-2 model (cf. paper Figs. 20-21)")
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "size", "OMB(us)", "cupy", "pycuda", "numba")
	for _, r := range omb.Series.Rows {
		cu, _ := series[pybuf.CuPy].Get(r.Size)
		pc, _ := series[pybuf.PyCUDA].Get(r.Size)
		nb, _ := series[pybuf.Numba].Get(r.Size)
		fmt.Printf("%-10s %10.2f %10.2f %10.2f %10.2f\n",
			stats.HumanBytes(r.Size), r.AvgUs, cu.AvgUs, pc.AvgUs, nb.AvgUs)
	}
	for _, lib := range pybuf.GPULibraries() {
		fmt.Printf("average %v overhead: %.2f us\n",
			lib, stats.AvgOverheadUs(series[lib], &omb.Series))
	}
	fmt.Println("\nCuPy and PyCUDA resolve device pointers cheaply through the CUDA")
	fmt.Println("Array Interface; Numba's staging costs roughly twice as much.")
}
