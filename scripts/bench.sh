#!/usr/bin/env bash
# Runs the engine benchmark suite and emits a JSON results file.
#
#   scripts/bench.sh [output.json] [micro-benchtime] [largeworld-benchtime]
#
# Defaults: BENCH.json, 2s for the internal/mpi micro-benchmarks, 10x for
# the 256-rank large-world and the 1024/4096-rank huge-world benchmarks.
# CI's smoke job passes 1x 1x so the suite runs once and the JSON artifact
# is uploaded without burning minutes; BENCH_PR*.json files committed to
# the repo are generated with the defaults and carry the pre-change
# baseline alongside.
#
# The large-world benchmark runs under BOTH execution engines (goroutine
# and event); the JSON carries their ratio as engine_speedup_large_world,
# the before/after delta of the PR 4 event executor. The huge-world rows
# are event-engine only: the goroutine engine cannot reach those rank
# counts in reasonable wall-clock time.
set -euo pipefail

out="${1:-BENCH.json}"
micro_time="${2:-2s}"
large_time="${3:-10x}"

cd "$(dirname "$0")/.."

micro=$(go test ./internal/mpi -run '^$' \
	-bench 'BenchmarkEagerSendRecv|BenchmarkRendezvousExchange|BenchmarkAllreduce64|BenchmarkIallreduceOverlap' \
	-benchmem -benchtime="$micro_time" -count=1)
large=$(go test . -run '^$' -bench 'BenchmarkEngineLargeWorld|BenchmarkEngineHugeWorld' \
	-benchmem -benchtime="$large_time" -count=1)

printf '%s\n%s\n' "$micro" "$large" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	rows[n++] = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		name, $2, $3, $5, $7)
	ns[name] = $3
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"go\": \"%s/%s\",\n", goos, goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	if (("EngineLargeWorld/goroutine" in ns) && ("EngineLargeWorld/event" in ns))
		printf "  \"engine_speedup_large_world\": %.2f,\n", ns["EngineLargeWorld/goroutine"] / ns["EngineLargeWorld/event"]
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++)
		printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' >"$out"

echo "wrote $out"
