#!/usr/bin/env bash
# Runs the engine benchmark suite and emits a JSON results file.
#
#   scripts/bench.sh [output.json] [micro-benchtime] [largeworld-benchtime]
#
# Defaults: BENCH.json, 2s for the internal/mpi micro-benchmarks, 10x for
# the 256-rank large-world and the 1024- to 262144-rank huge-world
# benchmarks.
# CI's smoke job passes 1x 1x so the suite runs once and the JSON artifact
# is uploaded without burning minutes; BENCH_PR*.json files committed to
# the repo are generated with the defaults and carry the pre-change
# baseline alongside.
#
# The large-world benchmark runs under BOTH execution engines (goroutine
# and event); the JSON carries their ratio as engine_speedup_large_world,
# the before/after delta of the PR 4 event executor. The huge-world rows
# are event-engine only: the goroutine engine cannot reach those rank
# counts in reasonable wall-clock time.
#
# The multi-pair rows (PR 5) run the registry-registered mbw_mr benchmark
# at a sparse (16x1) and a folded (63x7) placement and carry the aggregate
# message rate as msg_rate_per_sec — the perf baseline of the multi-pair
# point-to-point family.
#
# The huge-world family (PR 6) runs at 1024/4096/16384/65536 ranks with
# symmetry folding on, plus 1024/4096 fold-off rows; the JSON carries
# fold_speedup_huge_world, the 4096-rank fold-off/fold-on wall-clock
# ratio. The 65536-rank row is the scaling headline and is reported
# honestly whatever it measures.
#
# The fault layer (PR 7) must cost nothing when no plan is given: the JSON
# carries fault_path_overhead, the fresh 4096-rank huge-world ns/op divided
# by the same row in the committed BENCH_PR6.json pre-fault baseline. A
# value near 1.0 means the no-plan hot path did not regress.
#
# The serve_load row (PR 9) load-tests the tuning service in process:
# BenchmarkServeLoad drives a concurrent mixed query stream (7/8 repeats of
# a hot configuration, 1/8 cold ones) through the full HTTP handler stack —
# cache, singleflight, admission control — and the JSON carries its
# sustained qps, p99 latency and cache-hit ratio.
#
# The autotune_search row (PR 10) runs a complete small ALNS search per
# iteration (BenchmarkAutotuneSearch) and carries the tuner's probe
# evaluations/sec, in-process cache-hit ratio, and objective trajectory
# endpoints (init_obj_us = shipped defaults, best_obj_us = after search).
#
# The schedule-folding family (PR 8) extends the huge-world sweep to
# 262144 ranks and adds 4096/16384-rank rows with class-level schedule
# folding disabled (the per-schedule gather fallback); the JSON carries
# schedfold_speedup_huge_world, the 16384-rank schedfold-off/schedfold-on
# wall-clock ratio. The huge-world benchmarks also self-check the
# cross-world caches: a run that overflowed them fails (its ns/op would
# measure cache thrashing, not the engine), and this script aborts loudly
# with the benchmark output instead of recording the row.
set -euo pipefail

out="${1:-BENCH.json}"
micro_time="${2:-2s}"
large_time="${3:-10x}"

cd "$(dirname "$0")/.."

# Pre-fault-layer baseline for the no-plan overhead ratio.
base_ns=""
if [ -f BENCH_PR6.json ] && command -v jq >/dev/null 2>&1; then
	base_ns=$(jq -r '.benchmarks[] | select(.name=="EngineHugeWorld/4096") | .ns_per_op' BENCH_PR6.json)
fi

micro=$(go test ./internal/mpi -run '^$' \
	-bench 'BenchmarkEagerSendRecv|BenchmarkRendezvousExchange|BenchmarkAllreduce64|BenchmarkIallreduceOverlap' \
	-benchmem -benchtime="$micro_time" -count=1)
# The huge-world benchmarks b.Fatal on cross-world cache overflow; surface
# their output and abort instead of writing a JSON built from a bad run.
if ! large=$(go test . -run '^$' -bench 'BenchmarkEngineLargeWorld|BenchmarkEngineHugeWorld' \
	-benchmem -benchtime="$large_time" -count=1); then
	printf '%s\n' "$large" >&2
	echo "bench.sh: engine benchmarks failed (cache overflow or error above); no JSON written" >&2
	exit 1
fi
mbw=$(go test . -run '^$' -bench 'BenchmarkMultiPairMessageRate' \
	-benchtime="$large_time" -count=1)
srv=$(go test ./internal/serve -run '^$' -bench 'BenchmarkServeLoad' \
	-benchtime="$large_time" -count=1)
tn=$(go test ./internal/tune -run '^$' -bench 'BenchmarkAutotuneSearch' \
	-benchtime="$large_time" -count=1)

printf '%s\n%s\n%s\n%s\n%s\n' "$micro" "$large" "$mbw" "$srv" "$tn" | awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v base_ns="$base_ns" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^BenchmarkMultiPairMessageRate/ {
	# "BenchmarkMultiPairMessageRate/16x1-4  10  984827 ns/op  24614239 msgs/s"
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^BenchmarkMultiPairMessageRate\//, "", name)
	mbwRows[m++] = sprintf("    {\"placement\": \"%s\", \"benchmark\": \"mbw_mr\", \"size\": 8, \"ns_per_op\": %s, \"msg_rate_per_sec\": %s}",
		name, $3, $5)
	next
}
/^BenchmarkServeLoad/ {
	# "BenchmarkServeLoad-4  200  18222350 ns/op  0.87 hit_ratio  124.0 p99_us  7315 qps"
	# (custom metrics are emitted unit-sorted; scan by unit, not position)
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") srv_ns = $i
		if ($(i+1) == "qps") srv_qps = $i
		if ($(i+1) == "p99_us") srv_p99 = $i
		if ($(i+1) == "hit_ratio") srv_hit = $i
	}
	next
}
/^BenchmarkAutotuneSearch/ {
	# "BenchmarkAutotuneSearch-4  2  18708013 ns/op  269.3 best_obj_us  3368 evals/s ..."
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op") tn_ns = $i
		if ($(i+1) == "evals/s") tn_eps = $i
		if ($(i+1) == "hit_ratio") tn_hit = $i
		if ($(i+1) == "init_obj_us") tn_init = $i
		if ($(i+1) == "best_obj_us") tn_best = $i
	}
	next
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	rows[n++] = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
		name, $2, $3, $5, $7)
	ns[name] = $3
}
END {
	printf "{\n"
	printf "  \"generated\": \"%s\",\n", date
	printf "  \"go\": \"%s/%s\",\n", goos, goarch
	printf "  \"cpu\": \"%s\",\n", cpu
	if (("EngineLargeWorld/goroutine" in ns) && ("EngineLargeWorld/event" in ns))
		printf "  \"engine_speedup_large_world\": %.2f,\n", ns["EngineLargeWorld/goroutine"] / ns["EngineLargeWorld/event"]
	if (("EngineHugeWorldNoFold/4096" in ns) && ("EngineHugeWorld/4096" in ns))
		printf "  \"fold_speedup_huge_world\": %.2f,\n", ns["EngineHugeWorldNoFold/4096"] / ns["EngineHugeWorld/4096"]
	if (("EngineHugeWorldNoSchedFold/16384" in ns) && ("EngineHugeWorld/16384" in ns))
		printf "  \"schedfold_speedup_huge_world\": %.2f,\n", ns["EngineHugeWorldNoSchedFold/16384"] / ns["EngineHugeWorld/16384"]
	if (base_ns != "" && ("EngineHugeWorld/4096" in ns))
		printf "  \"fault_path_overhead\": %.3f,\n", ns["EngineHugeWorld/4096"] / base_ns
	if (srv_ns != "")
		printf "  \"serve_load\": {\"ns_per_op\": %s, \"qps\": %s, \"p99_us\": %s, \"cache_hit_ratio\": %s},\n", srv_ns, srv_qps, srv_p99, srv_hit
	if (tn_ns != "")
		printf "  \"autotune_search\": {\"ns_per_op\": %s, \"evals_per_sec\": %s, \"cache_hit_ratio\": %s, \"init_obj_us\": %s, \"best_obj_us\": %s},\n", tn_ns, tn_eps, tn_hit, tn_init, tn_best
	if (m > 0) {
		printf "  \"multi_pair_message_rate\": [\n"
		for (i = 0; i < m; i++)
			printf "%s%s\n", mbwRows[i], (i < m - 1 ? "," : "")
		printf "  ],\n"
	}
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++)
		printf "%s%s\n", rows[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}' >"$out"

echo "wrote $out"
