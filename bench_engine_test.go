package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// largeWorldOptions is the 256-rank large-world configuration the perf
// trajectory regresses against: a timing-only allreduce sweep over the
// rendezvous sizes (16 KiB - 256 KiB), the shape of the paper's
// full-subscription experiments.
func largeWorldOptions(engine string) core.Options {
	return core.Options{
		Benchmark: core.Allreduce, Mode: core.ModeC,
		Ranks: 256, PPN: 32, TimingOnly: true, Engine: engine,
		MinSize: 16 * 1024, MaxSize: 256 * 1024,
		Iters: 20, Warmup: 2, LargeIters: 10, LargeWarmup: 2,
	}
}

// BenchmarkEngineLargeWorld runs the large-world sweep once per op, under
// each execution engine. Both engines report identical virtual times (see
// TestEngineLargeWorldParity); ns/op is the end-to-end wall-clock cost of
// simulating the whole sweep.
func BenchmarkEngineLargeWorld(b *testing.B) {
	for _, engine := range []string{"goroutine", "event"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(largeWorldOptions(engine)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// hugeWorldOptions is the huge-world sweep configuration: a timing-only
// allreduce sweep with ranks oversubscribing Frontera's 16 nodes, matching
// the fully-subscribed pricing of the paper's largest runs.
func hugeWorldOptions(ranks int, noFold bool) core.Options {
	return core.Options{
		Benchmark: core.Allreduce, Mode: core.ModeC,
		Ranks: ranks, PPN: ranks / 16, TimingOnly: true, Engine: "event",
		NoFold:  noFold,
		MinSize: 16 * 1024, MaxSize: 64 * 1024,
		Iters: 10, Warmup: 2, LargeIters: 5, LargeWarmup: 1,
	}
}

// BenchmarkEngineHugeWorld is the scale the event engine unlocks:
// 1024- to 65536-rank timing-only allreduce sweeps that the goroutine
// engine cannot run in reasonable wall-clock time. The 16Ki and 64Ki rows
// are the symmetry-folding scale targets; their wall-clock is dominated by
// per-rank schedule bookkeeping (see README "Scaling limits").
func BenchmarkEngineHugeWorld(b *testing.B) {
	for _, ranks := range []int{1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprint(ranks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(hugeWorldOptions(ranks, false)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineHugeWorldNoFold is the same sweep with symmetry folding
// disabled — every rank executes its schedule individually. The ratio to
// the folded row is the fold's end-to-end speedup (fold_speedup_huge_world
// in the bench.sh JSON). Capped at 4096 ranks: unfolded 64Ki-rank runs are
// too slow to benchmark routinely.
func BenchmarkEngineHugeWorldNoFold(b *testing.B) {
	for _, ranks := range []int{1024, 4096} {
		b.Run(fmt.Sprint(ranks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(hugeWorldOptions(ranks, true)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEngineFoldSmoke1024 is the CI race-smoke gate for the fold at scale:
// one 1024-rank event sweep folded and one with folding disabled must
// produce byte-identical series.
func TestEngineFoldSmoke1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank sweep in -short mode")
	}
	want, err := core.Run(hugeWorldOptions(1024, true))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(hugeWorldOptions(1024, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series.Rows) != len(want.Series.Rows) {
		t.Fatalf("row count diverged: fold-off %d, folded %d",
			len(want.Series.Rows), len(got.Series.Rows))
	}
	for i, w := range want.Series.Rows {
		if got.Series.Rows[i] != w {
			t.Errorf("row %d diverged:\nfold-off %+v\nfolded   %+v", i, w, got.Series.Rows[i])
		}
	}
}

// TestEngineLargeWorldParity is the CI gate behind the bench-smoke job: the
// large-world configuration must report byte-identical series under both
// engines. A shortened sweep keeps the goroutine run affordable in CI.
func TestEngineLargeWorldParity(t *testing.T) {
	short := func(engine string) core.Options {
		o := largeWorldOptions(engine)
		o.Iters, o.Warmup, o.LargeIters, o.LargeWarmup = 4, 1, 2, 1
		return o
	}
	want, err := core.Run(short("goroutine"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(short("event"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series.Rows) != len(want.Series.Rows) {
		t.Fatalf("row count diverged: goroutine %d, event %d", len(want.Series.Rows), len(got.Series.Rows))
	}
	for i, w := range want.Series.Rows {
		if g := got.Series.Rows[i]; g != w {
			t.Errorf("size %d: virtual times diverged:\ngoroutine: %+v\nevent:     %+v", w.Size, w, g)
		}
	}
}
