package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// largeWorldOptions is the 256-rank large-world configuration the perf
// trajectory regresses against: a timing-only allreduce sweep over the
// rendezvous sizes (16 KiB - 256 KiB), the shape of the paper's
// full-subscription experiments.
func largeWorldOptions(engine string) core.Options {
	return core.Options{
		Benchmark: core.Allreduce, Mode: core.ModeC,
		Ranks: 256, PPN: 32, TimingOnly: true, Engine: engine,
		MinSize: 16 * 1024, MaxSize: 256 * 1024,
		Iters: 20, Warmup: 2, LargeIters: 10, LargeWarmup: 2,
	}
}

// BenchmarkEngineLargeWorld runs the large-world sweep once per op, under
// each execution engine. Both engines report identical virtual times (see
// TestEngineLargeWorldParity); ns/op is the end-to-end wall-clock cost of
// simulating the whole sweep.
func BenchmarkEngineLargeWorld(b *testing.B) {
	for _, engine := range []string{"goroutine", "event"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(largeWorldOptions(engine)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineHugeWorld is the scale the event engine unlocks: 1024- and
// 4096-rank timing-only allreduce sweeps that the goroutine engine cannot
// run in reasonable wall-clock time. Ranks oversubscribe Frontera's 16
// nodes, matching the fully-subscribed pricing of the paper's largest runs.
func BenchmarkEngineHugeWorld(b *testing.B) {
	for _, ranks := range []int{1024, 4096} {
		b.Run(fmt.Sprint(ranks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Options{
					Benchmark: core.Allreduce, Mode: core.ModeC,
					Ranks: ranks, PPN: ranks / 16, TimingOnly: true, Engine: "event",
					MinSize: 16 * 1024, MaxSize: 64 * 1024,
					Iters: 10, Warmup: 2, LargeIters: 5, LargeWarmup: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEngineLargeWorldParity is the CI gate behind the bench-smoke job: the
// large-world configuration must report byte-identical series under both
// engines. A shortened sweep keeps the goroutine run affordable in CI.
func TestEngineLargeWorldParity(t *testing.T) {
	short := func(engine string) core.Options {
		o := largeWorldOptions(engine)
		o.Iters, o.Warmup, o.LargeIters, o.LargeWarmup = 4, 1, 2, 1
		return o
	}
	want, err := core.Run(short("goroutine"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(short("event"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series.Rows) != len(want.Series.Rows) {
		t.Fatalf("row count diverged: goroutine %d, event %d", len(want.Series.Rows), len(got.Series.Rows))
	}
	for i, w := range want.Series.Rows {
		if g := got.Series.Rows[i]; g != w {
			t.Errorf("size %d: virtual times diverged:\ngoroutine: %+v\nevent:     %+v", w.Size, w, g)
		}
	}
}
