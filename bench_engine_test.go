package repro

import (
	"testing"

	"repro/internal/core"
)

// BenchmarkEngineLargeWorld is the large-world engine benchmark the perf
// trajectory regresses against: a 256-rank timing-only allreduce sweep over
// the rendezvous sizes (16 KiB - 256 KiB), the shape of the paper's
// full-subscription experiments. One op is one complete core.Run, so ns/op
// is the end-to-end wall-clock cost of simulating the whole sweep.
func BenchmarkEngineLargeWorld(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := core.Run(core.Options{
			Benchmark: core.Allreduce, Mode: core.ModeC,
			Ranks: 256, PPN: 32, TimingOnly: true,
			MinSize: 16 * 1024, MaxSize: 256 * 1024,
			Iters: 20, Warmup: 2, LargeIters: 10, LargeWarmup: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
