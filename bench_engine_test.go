package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mpi"
)

// largeWorldOptions is the 256-rank large-world configuration the perf
// trajectory regresses against: a timing-only allreduce sweep over the
// rendezvous sizes (16 KiB - 256 KiB), the shape of the paper's
// full-subscription experiments.
func largeWorldOptions(engine string) core.Options {
	return core.Options{
		Benchmark: core.Allreduce, Mode: core.ModeC,
		Ranks: 256, PPN: 32, TimingOnly: true, Engine: engine,
		MinSize: 16 * 1024, MaxSize: 256 * 1024,
		Iters: 20, Warmup: 2, LargeIters: 10, LargeWarmup: 2,
	}
}

// BenchmarkEngineLargeWorld runs the large-world sweep once per op, under
// each execution engine. Both engines report identical virtual times (see
// TestEngineLargeWorldParity); ns/op is the end-to-end wall-clock cost of
// simulating the whole sweep.
func BenchmarkEngineLargeWorld(b *testing.B) {
	for _, engine := range []string{"goroutine", "event"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(largeWorldOptions(engine)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// hugeWorldOptions is the huge-world sweep configuration: a timing-only
// allreduce sweep with ranks oversubscribing Frontera's 16 nodes, matching
// the fully-subscribed pricing of the paper's largest runs.
func hugeWorldOptions(ranks int, noFold bool) core.Options {
	return core.Options{
		Benchmark: core.Allreduce, Mode: core.ModeC,
		Ranks: ranks, PPN: ranks / 16, TimingOnly: true, Engine: "event",
		NoFold:  noFold,
		MinSize: 16 * 1024, MaxSize: 64 * 1024,
		Iters: 10, Warmup: 2, LargeIters: 5, LargeWarmup: 1,
	}
}

// hugeWorldOptionsNoSchedFold is the huge-world sweep with class-level
// schedule folding disabled: the event engine keeps symmetry folding but
// falls back to the per-schedule gather, the pre-schedfold code path.
func hugeWorldOptionsNoSchedFold(ranks int) core.Options {
	o := hugeWorldOptions(ranks, false)
	o.NoSchedFold = true
	return o
}

// reportCacheOverflows fails the benchmark if the run overflowed any of the
// process-wide schedule/step/structure caches. An overflowing sweep is
// re-compiling inside the timed region, so its ns/op measures cache
// thrashing rather than the engine — bench.sh must not record such a row
// as a baseline (it aborts loudly when this trips).
func reportCacheOverflows(b *testing.B, before int64) {
	b.Helper()
	if d := mpi.CacheOverflowCount() - before; d > 0 {
		b.Fatalf("huge-world sweep overflowed cross-world caches %d times; ns/op is not a valid baseline", d)
	}
}

// BenchmarkEngineHugeWorld is the scale the event engine unlocks: 1024- to
// 262144-rank timing-only allreduce sweeps that the goroutine engine cannot
// run in reasonable wall-clock time. The 64Ki and 256Ki rows are the
// schedule-folding scale targets; their wall-clock is dominated by the
// per-rank token scan and clock fanout (see README "Scaling limits").
func BenchmarkEngineHugeWorld(b *testing.B) {
	for _, ranks := range []int{1024, 4096, 16384, 65536, 262144} {
		b.Run(fmt.Sprint(ranks), func(b *testing.B) {
			b.ReportAllocs()
			before := mpi.CacheOverflowCount()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(hugeWorldOptions(ranks, false)); err != nil {
					b.Fatal(err)
				}
			}
			reportCacheOverflows(b, before)
		})
	}
}

// BenchmarkEngineHugeWorldNoSchedFold is the same sweep with class-level
// schedule folding disabled — the engine still folds symmetric ranks but
// compiles and replays one schedule per rank class gather the pre-schedfold
// way. The ratio to the folded 16Ki row is the schedfold's end-to-end
// speedup (schedfold_speedup_huge_world in the bench.sh JSON). Capped at
// 16384 ranks: the per-schedule gather makes 64Ki+ rows too slow to
// benchmark routinely.
func BenchmarkEngineHugeWorldNoSchedFold(b *testing.B) {
	for _, ranks := range []int{4096, 16384} {
		b.Run(fmt.Sprint(ranks), func(b *testing.B) {
			b.ReportAllocs()
			before := mpi.CacheOverflowCount()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(hugeWorldOptionsNoSchedFold(ranks)); err != nil {
					b.Fatal(err)
				}
			}
			reportCacheOverflows(b, before)
		})
	}
}

// BenchmarkEngineHugeWorldNoFold is the same sweep with symmetry folding
// disabled — every rank executes its schedule individually. The ratio to
// the folded row is the fold's end-to-end speedup (fold_speedup_huge_world
// in the bench.sh JSON). Capped at 4096 ranks: unfolded 64Ki-rank runs are
// too slow to benchmark routinely.
func BenchmarkEngineHugeWorldNoFold(b *testing.B) {
	for _, ranks := range []int{1024, 4096} {
		b.Run(fmt.Sprint(ranks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(hugeWorldOptions(ranks, true)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEngineFoldSmoke1024 is the CI race-smoke gate for the fold at scale:
// one 1024-rank event sweep folded and one with folding disabled must
// produce byte-identical series.
func TestEngineFoldSmoke1024(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank sweep in -short mode")
	}
	want, err := core.Run(hugeWorldOptions(1024, true))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(hugeWorldOptions(1024, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series.Rows) != len(want.Series.Rows) {
		t.Fatalf("row count diverged: fold-off %d, folded %d",
			len(want.Series.Rows), len(got.Series.Rows))
	}
	for i, w := range want.Series.Rows {
		if got.Series.Rows[i] != w {
			t.Errorf("row %d diverged:\nfold-off %+v\nfolded   %+v", i, w, got.Series.Rows[i])
		}
	}
}

// TestEngineSchedFoldSmoke16Ki is the CI race-smoke gate for schedule
// folding at scale: one 16384-rank event sweep with class-level folding and
// one on the per-schedule gather fallback must produce byte-identical
// series. 16Ki is the smallest rank count where every schedfold layer (key
// gather, structural cache, fallback demotion) is exercised by the
// allreduce sweep's mixed eager/rendezvous sizes.
func TestEngineSchedFoldSmoke16Ki(t *testing.T) {
	if testing.Short() {
		t.Skip("16384-rank sweep in -short mode")
	}
	want, err := core.Run(hugeWorldOptionsNoSchedFold(16384))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(hugeWorldOptions(16384, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series.Rows) != len(want.Series.Rows) {
		t.Fatalf("row count diverged: schedfold-off %d, schedfolded %d",
			len(want.Series.Rows), len(got.Series.Rows))
	}
	for i, w := range want.Series.Rows {
		if got.Series.Rows[i] != w {
			t.Errorf("row %d diverged:\nschedfold-off %+v\nschedfolded   %+v", i, w, got.Series.Rows[i])
		}
	}
}

// TestEngineLargeWorldParity is the CI gate behind the bench-smoke job: the
// large-world configuration must report byte-identical series under both
// engines. A shortened sweep keeps the goroutine run affordable in CI.
func TestEngineLargeWorldParity(t *testing.T) {
	short := func(engine string) core.Options {
		o := largeWorldOptions(engine)
		o.Iters, o.Warmup, o.LargeIters, o.LargeWarmup = 4, 1, 2, 1
		return o
	}
	want, err := core.Run(short("goroutine"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Run(short("event"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Series.Rows) != len(want.Series.Rows) {
		t.Fatalf("row count diverged: goroutine %d, event %d", len(want.Series.Rows), len(got.Series.Rows))
	}
	for i, w := range want.Series.Rows {
		if g := got.Series.Rows[i]; g != w {
			t.Errorf("size %d: virtual times diverged:\ngoroutine: %+v\nevent:     %+v", w.Size, w, g)
		}
	}
}
