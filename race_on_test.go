//go:build race

package repro

// raceEnabled reports whether the race detector is compiled in; tests
// that pin allocation counts skip under it.
const raceEnabled = true
